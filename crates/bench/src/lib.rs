//! Shared experiment toolkit for the per-table/per-figure bench targets.
//!
//! Every bench target (`crates/bench/benches/*.rs`, `harness = false`)
//! reproduces one table or figure of the paper's evaluation (§6) and
//! prints the same rows/series the paper reports. This library holds the
//! common machinery: cluster construction per workload, the fail-over
//! experiment driver (runner + sampler + fault injection + FD), and
//! plain-text table printing.
//!
//! Scale note (DESIGN.md §1): this host has one core and no RNIC, so
//! coordinator counts, dataset sizes, and run durations are scaled down
//! from the paper's 5-node / 72-core / 100 Gbps testbed. The *shapes*
//! (who wins, by what factor, where curves dip and recover) are the
//! reproduction target; EXPERIMENTS.md records paper-vs-measured.

use std::sync::Arc;
use std::time::{Duration, Instant};

use pandora::{
    MemoryFailureHandler, MetricsSnapshot, ProtocolKind, Sample, Sampler, SimCluster, SystemConfig,
};
use pandora_workloads::{
    with_tables, MicroBench, RunnerConfig, SmallBank, Tatp, Tpcc, Workload, WorkloadRunner,
};
use rdma_sim::NodeId;

// ----------------------------------------------------------------------
// Standard workload scales for the harness
// ----------------------------------------------------------------------

/// Default coordinator count for throughput experiments. The paper uses
/// 128 on 36-core servers; one simulated core sustains 8 comfortably.
pub const DEFAULT_COORDINATORS: usize = 8;

pub fn micro_default() -> MicroBench {
    MicroBench::new(65_536, 0.5)
}

pub fn micro_all_writes() -> MicroBench {
    MicroBench::new(65_536, 1.0)
}

pub fn smallbank_default() -> SmallBank {
    SmallBank::new(16_384)
}

pub fn tatp_default() -> Tatp {
    Tatp::new(8_192)
}

pub fn tpcc_default() -> Tpcc {
    // 4 warehouses = 40 districts: enough to keep 8 coordinators from
    // serializing on the district hot rows while preserving TPC-C's
    // contention profile.
    Tpcc::new(4)
}

/// Registered-memory requirement per node for a workload's tables
/// (segments are hosted on every node), plus log slabs and headroom.
pub fn capacity_for(workload: &dyn Workload) -> u64 {
    let segments: u64 = workload.tables().iter().map(|t| t.segment_bytes()).sum();
    (segments + (96 << 20)).next_power_of_two()
}

/// Build a loaded 3-node (f+1 = 2) cluster for `workload`.
pub fn cluster_for(workload: &dyn Workload, config: SystemConfig) -> Arc<SimCluster> {
    cluster_with_latency(workload, config, rdma_sim::LatencyModel::zero())
}

/// Like [`cluster_for`] with an injected per-verb latency model.
pub fn cluster_with_latency(
    workload: &dyn Workload,
    config: SystemConfig,
    latency: rdma_sim::LatencyModel,
) -> Arc<SimCluster> {
    let builder = with_tables(
        SimCluster::builder(config.protocol)
            .memory_nodes(3)
            .replication(2)
            .capacity_per_node(capacity_for(workload))
            .max_coord_slots(2048)
            .config(config)
            .latency(latency),
        workload,
    );
    let cluster = builder.build().expect("build bench cluster");
    workload.load(&cluster);
    Arc::new(cluster)
}

/// Latency model for the fail-over figures: sleep-scale round trips put
/// the system in the paper's *coordinator-bound* regime (each
/// coordinator spends most of its time waiting on the network), so
/// throughput is proportional to live coordinators and the fail-over
/// dip/recovery shape is visible even on a single-core host. Zero
/// latency would leave the single CPU saturated by the survivors and
/// flatten the dip (DESIGN.md §1).
pub fn failover_latency() -> rdma_sim::LatencyModel {
    rdma_sim::LatencyModel { rtt: std::time::Duration::from_micros(150), ns_per_kib: 0 }
}

// ----------------------------------------------------------------------
// Fail-over experiment driver
// ----------------------------------------------------------------------

/// The fault injected mid-run.
#[derive(Debug, Clone, Copy)]
pub enum FaultKind {
    /// No fault (steady-state line).
    None,
    /// Crash this fraction of the coordinators (compute failure).
    ComputeCrash { fraction: f64 },
    /// Crash-stop one memory server (memory failure).
    MemoryKill { node: u16 },
}

/// Fail-over experiment specification.
#[derive(Debug, Clone)]
pub struct FailoverSpec {
    pub coordinators: usize,
    /// Total run length.
    pub duration: Duration,
    /// When the fault fires.
    pub fault_at: Duration,
    pub fault: FaultKind,
    /// Respawn crashed coordinators after recovery completes (the
    /// resource-reuse line of fig. 8).
    pub respawn: bool,
    /// Delay FD detection by this much (models a slow/naive recovery for
    /// the fig. 13/14 sensitivity study; zero = normal 5 ms detection).
    pub recovery_delay: Duration,
    pub sample_interval: Duration,
    pub seed: u64,
    /// Per-verb latency model ([`failover_latency`] for fault figures).
    pub latency: rdma_sim::LatencyModel,
}

impl Default for FailoverSpec {
    fn default() -> Self {
        FailoverSpec {
            coordinators: DEFAULT_COORDINATORS,
            duration: Duration::from_secs(8),
            fault_at: Duration::from_secs(3),
            fault: FaultKind::None,
            respawn: false,
            recovery_delay: Duration::ZERO,
            sample_interval: Duration::from_millis(100),
            seed: 7,
            latency: rdma_sim::LatencyModel::zero(),
        }
    }
}

/// Run one fail-over experiment on a pre-built cluster and return the
/// throughput time series.
pub fn run_failover_on<W: Workload>(
    cluster: Arc<SimCluster>,
    workload: Arc<W>,
    spec: &FailoverSpec,
) -> Vec<Sample> {
    run_failover_with_metrics(cluster, workload, spec).0
}

/// Like [`run_failover_on`], also returning the run's full telemetry
/// snapshot (per-phase latencies, abort taxonomy, fabric verb counters,
/// recovery-step timings). Set `PANDORA_METRICS_JSON=<path>` to have the
/// snapshot written out as JSON as well.
pub fn run_failover_with_metrics<W: Workload>(
    cluster: Arc<SimCluster>,
    workload: Arc<W>,
    spec: &FailoverSpec,
) -> (Vec<Sample>, MetricsSnapshot) {
    let mut runner = WorkloadRunner::spawn(
        Arc::clone(&cluster),
        workload,
        RunnerConfig {
            coordinators: spec.coordinators,
            seed: spec.seed,
            ..RunnerConfig::default()
        },
    );
    let sampler = Sampler::start(runner.probe(), spec.sample_interval);
    let t0 = Instant::now();

    std::thread::sleep(spec.fault_at);
    let crashed = match spec.fault {
        FaultKind::None => Vec::new(),
        FaultKind::ComputeCrash { fraction } => {
            let n = ((spec.coordinators as f64) * fraction).round() as usize;
            runner.crash_first(n)
        }
        FaultKind::MemoryKill { node } => {
            cluster.ctx.fabric.kill_node(NodeId(node)).expect("kill node");
            // Detection delay, then the reconfiguration protocol.
            std::thread::sleep(Duration::from_millis(5));
            let handler =
                MemoryFailureHandler::new(Arc::clone(&cluster.ctx)).expect("memfail handler");
            handler.handle_failure(NodeId(node));
            Vec::new()
        }
    };
    if !crashed.is_empty() {
        // Drive detection + recovery explicitly so the recovery delay is
        // controllable (FD timeout itself is 5 ms).
        let delay = spec.recovery_delay.max(cluster.ctx.config.fd_timeout);
        let cluster2 = Arc::clone(&cluster);
        std::thread::spawn(move || {
            std::thread::sleep(delay);
            for coord in crashed {
                cluster2.fd.declare_failed(coord);
            }
        });
        if spec.respawn {
            // Wait for recovery of every crashed coordinator, then bring
            // replacements up (paper §6.4: "the failed coordinators are
            // brought back in less than 10ms after the fault").
            let expect = ((spec.coordinators as f64)
                * match spec.fault {
                    FaultKind::ComputeCrash { fraction } => fraction,
                    _ => 0.0,
                })
            .round() as usize;
            let deadline = Instant::now() + Duration::from_secs(10);
            while cluster.fd.reports().len() < expect && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(1));
            }
            runner.respawn_crashed();
        }
    }

    let remaining = spec.duration.saturating_sub(t0.elapsed());
    std::thread::sleep(remaining);
    let samples = sampler.finish();
    let registry = runner.metrics();
    runner.stop_and_join();
    registry.add_reports(&cluster.fd.reports());
    let snapshot = registry.snapshot();
    if let Ok(path) = std::env::var("PANDORA_METRICS_JSON") {
        if !path.is_empty() {
            write_metrics_json(&path, &snapshot);
        }
    }
    (samples, snapshot)
}

/// Write a metrics snapshot as JSON, logging (not panicking) on I/O
/// failure — telemetry must never kill an experiment.
pub fn write_metrics_json(path: &str, snapshot: &MetricsSnapshot) {
    match std::fs::write(path, snapshot.to_json()) {
        Ok(()) => eprintln!("metrics written to {path}"),
        Err(e) => eprintln!("warning: cannot write metrics to {path}: {e}"),
    }
}

/// Build the cluster and run one fail-over experiment.
pub fn run_failover<W: Workload>(
    workload: Arc<W>,
    config: SystemConfig,
    spec: &FailoverSpec,
) -> Vec<Sample> {
    let cluster = cluster_with_latency(workload.as_ref(), config, spec.latency);
    run_failover_on(cluster, workload, spec)
}

// ----------------------------------------------------------------------
// Output helpers
// ----------------------------------------------------------------------

/// Print a titled, aligned plain-text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Print several sample series as aligned time/tps columns (the textual
/// equivalent of the paper's throughput-over-time figures).
pub fn print_series(title: &str, series: &[(&str, Vec<Sample>)], bucket_ms: u64) {
    let mut headers = vec!["t(s)"];
    for (name, _) in series {
        headers.push(name);
    }
    let max_ms = series.iter().flat_map(|(_, s)| s.iter().map(|x| x.at_ms)).max().unwrap_or(0);
    let mut rows = Vec::new();
    let mut t = bucket_ms;
    while t <= max_ms {
        let mut row = vec![format!("{:.1}", t as f64 / 1000.0)];
        for (_, s) in series {
            let (sum, n) = s
                .iter()
                .filter(|x| x.at_ms > t - bucket_ms && x.at_ms <= t)
                .map(|x| x.tps)
                .fold((0.0, 0usize), |(sum, n), v| (sum + v, n + 1));
            row.push(if n > 0 { format!("{:.0}", sum / n as f64) } else { "-".into() });
        }
        rows.push(row);
        t += bucket_ms;
    }
    print_table(title, &headers, &rows);
}

/// Mean tps in a window of a sample series.
pub fn window_mean(samples: &[Sample], from: Duration, to: Duration) -> f64 {
    pandora::mean_tps(samples, from.as_millis() as u64, to.as_millis() as u64)
}

/// A steady-state run: mean committed tps over `[warmup, duration)`.
pub fn steady_state_tps<W: Workload>(
    workload: Arc<W>,
    config: SystemConfig,
    coordinators: usize,
    duration: Duration,
    warmup: Duration,
) -> f64 {
    let spec = FailoverSpec {
        coordinators,
        duration,
        fault_at: duration, // never fires
        fault: FaultKind::None,
        ..Default::default()
    };
    let samples = run_failover(workload, config, &spec);
    window_mean(&samples, warmup, duration)
}

/// Convenience: a `SystemConfig` for a protocol.
pub fn cfg(protocol: ProtocolKind) -> SystemConfig {
    SystemConfig::new(protocol)
}

//! Cross-crate smoke probe: throughput and abort-rate sanity for each
//! workload × protocol combination (low bars — this is a correctness
//! gate, not a benchmark; the bench crate measures properly).

use std::sync::Arc;
use std::time::Duration;

use pandora::{ProtocolKind, SimCluster, SystemConfig};
use pandora_workloads::{
    with_tables, RunnerConfig, SmallBank, Tatp, Tpcc, Workload, WorkloadRunner,
};

fn probe<W: Workload>(workload: W, protocol: ProtocolKind) -> (u64, u64) {
    let workload = Arc::new(workload);
    let capacity: u64 = workload
        .tables()
        .iter()
        .map(|t| t.segment_bytes())
        .sum::<u64>()
        .next_power_of_two()
        .max(64 << 20)
        * 2;
    let cluster = with_tables(
        SimCluster::builder(protocol)
            .memory_nodes(3)
            .replication(2)
            .capacity_per_node(capacity)
            .config(SystemConfig::new(protocol)),
        workload.as_ref(),
    )
    .build()
    .unwrap();
    workload.load(&cluster);
    let runner = WorkloadRunner::spawn(
        Arc::new(cluster),
        workload,
        RunnerConfig { coordinators: 4, seed: 5, ..RunnerConfig::default() },
    );
    std::thread::sleep(Duration::from_millis(800));
    let probe = runner.probe();
    runner.stop_and_join();
    (probe.committed_total(), probe.aborted_total())
}

#[test]
fn tpcc_commits_with_reasonable_abort_rate() {
    for protocol in [ProtocolKind::Ford, ProtocolKind::Pandora] {
        let (committed, aborted) = probe(Tpcc::new(2), protocol);
        println!("TPC-C {protocol:?}: committed={committed} aborted={aborted}");
        assert!(committed > 200, "{protocol:?} TPC-C too slow: {committed}");
        assert!(
            aborted < committed * 4,
            "{protocol:?} TPC-C abort storm: {aborted} aborts vs {committed} commits"
        );
    }
}

#[test]
fn smallbank_commits_under_all_protocols() {
    for protocol in [ProtocolKind::Ford, ProtocolKind::Pandora, ProtocolKind::Traditional] {
        let (committed, aborted) = probe(SmallBank::new(8192), protocol);
        println!("SmallBank {protocol:?}: committed={committed} aborted={aborted}");
        assert!(committed > 1000, "{protocol:?} SmallBank too slow: {committed}");
        assert!(aborted < committed, "{protocol:?} SmallBank abort storm");
    }
}

#[test]
fn tatp_is_read_mostly_and_fast() {
    let (committed, aborted) = probe(Tatp::new(4096), ProtocolKind::Pandora);
    println!("TATP: committed={committed} aborted={aborted}");
    assert!(committed > 2000);
    assert!(aborted < committed / 2);
}

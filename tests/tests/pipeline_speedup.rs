//! The latency-hiding acceptance gate, as a deterministic test: at a
//! 2 µs modeled RTT, a warm 4-write commit on the fan-out path must run
//! at least 2x faster than the sequential baseline
//! (`SystemConfig::without_pipeline()`). Debug builds are skipped — the
//! unoptimized software path costs more than the modeled RTT and the
//! ratio measures the compiler, not the protocol; CI's bench-smoke job
//! runs this in release alongside the criterion ablation.

use std::time::{Duration, Instant};

use dkvs::{TableDef, TableId};
use pandora::{ProtocolKind, SimCluster, SystemConfig};
use rdma_sim::LatencyModel;

const KV: TableId = TableId(0);

/// Mean wall time per warm 4-write transaction under `config`.
fn commit_time(config: SystemConfig) -> Duration {
    let latency = LatencyModel { rtt: Duration::from_micros(2), ns_per_kib: 0 };
    let cluster = SimCluster::builder(ProtocolKind::Pandora)
        .memory_nodes(3)
        .replication(2)
        .capacity_per_node(16 << 20)
        .table(TableDef::sized_for(0, "kv", 40, 4096))
        .max_coord_slots(64)
        .config(config)
        .latency(latency)
        .build()
        .unwrap();
    cluster.bulk_load(KV, (0..2048u64).map(|k| (k, vec![0u8; 40]))).unwrap();
    let (mut co, _lease) = cluster.coordinator().unwrap();
    let run = |co: &mut pandora::Coordinator, base: u64| {
        let mut txn = co.begin();
        for k in base..base + 4 {
            txn.write(KV, k, &[1u8; 40]).unwrap();
        }
        txn.commit().unwrap();
    };
    // Warm the address cache over the whole working set first.
    for base in (0..512u64).step_by(4) {
        run(&mut co, base);
    }
    let iters = 500u32;
    let mut key = 0u64;
    let t0 = Instant::now();
    for _ in 0..iters {
        let base = key % 508;
        key = key.wrapping_add(4);
        run(&mut co, base);
    }
    t0.elapsed() / iters
}

#[test]
#[cfg_attr(debug_assertions, ignore = "timing gate needs an optimized build")]
fn pipelined_commit_at_least_2x_faster_at_2us_rtt() {
    let sequential = commit_time(SystemConfig::new(ProtocolKind::Pandora).without_pipeline());
    let pipelined = commit_time(SystemConfig::new(ProtocolKind::Pandora));
    eprintln!("sequential {sequential:?}/txn, pipelined {pipelined:?}/txn");
    assert!(
        sequential >= pipelined * 2,
        "fan-out commit path hides too few round trips: sequential {sequential:?} vs pipelined \
         {pipelined:?} (< 2x)"
    );
}

//! End-to-end serializability audit under a crash storm: concurrent
//! transfer workers with repeated random crash injection + recovery
//! (all three protocols). Money conservation is the observable
//! invariant — any lost update, partial commit, or bad roll-back shows
//! up as a minted or burned coin.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dkvs::{TableDef, TableId};
use pandora::{ProtocolKind, SimCluster, SystemConfig, TxnError};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rdma_sim::{CrashMode, CrashPlan};

const ACCOUNTS_TABLE: TableId = TableId(0);
const N_ACCOUNTS: u64 = 64;
const INITIAL: i64 = 1_000;

fn value(b: i64) -> Vec<u8> {
    let mut v = vec![0u8; 16];
    v[0..8].copy_from_slice(&b.to_le_bytes());
    v
}

fn balance(v: &[u8]) -> i64 {
    i64::from_le_bytes(v[0..8].try_into().unwrap())
}

fn audit_under_crash_storm(protocol: ProtocolKind, generations: usize) {
    let cluster = Arc::new(
        SimCluster::builder(protocol)
            .memory_nodes(3)
            .replication(2)
            .capacity_per_node(16 << 20)
            .table(TableDef::sized_for(0, "checking", 16, N_ACCOUNTS))
            .max_coord_slots(256)
            .config(SystemConfig::new(protocol))
            .build()
            .unwrap(),
    );
    cluster
        .bulk_load(ACCOUNTS_TABLE, (0..N_ACCOUNTS).map(|k| (k, value(INITIAL))))
        .unwrap();

    // Each generation: three workers transact; one of them is armed to
    // crash at a random op; after joining, the FD recovers the victim.
    let mut rng = StdRng::seed_from_u64(protocol as u64 * 31 + 5);
    for generation in 0..generations {
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for w in 0..3u64 {
            let cluster = Arc::clone(&cluster);
            let stop = Arc::clone(&stop);
            let crash_here = w == generation as u64 % 3;
            let crash_at = rng.random_range(1..60u64);
            let mode = match rng.random_range(0..3u32) {
                0 => CrashMode::BeforeOp,
                1 => CrashMode::AfterOp,
                _ => CrashMode::MidWrite,
            };
            let seed = rng.random::<u64>();
            handles.push(std::thread::spawn(move || {
                let (mut co, lease) = cluster.coordinator().unwrap();
                if crash_here {
                    co.injector().arm(CrashPlan { at_op: crash_at, mode });
                }
                let mut wrng = StdRng::seed_from_u64(seed);
                let mut crashed = false;
                for _ in 0..60 {
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    lease.beat();
                    let from = wrng.random_range(0..N_ACCOUNTS);
                    let to = (from + 1 + wrng.random_range(0..N_ACCOUNTS - 1)) % N_ACCOUNTS;
                    let r = (|| {
                        let mut txn = co.begin();
                        let a = balance(&txn.read(ACCOUNTS_TABLE, from)?.expect("from"));
                        let b = balance(&txn.read(ACCOUNTS_TABLE, to)?.expect("to"));
                        let amount = 7.min(a).max(0);
                        txn.write(ACCOUNTS_TABLE, from, &value(a - amount))?;
                        txn.write(ACCOUNTS_TABLE, to, &value(b + amount))?;
                        txn.commit()
                    })();
                    match r {
                        Ok(()) | Err(TxnError::Aborted(_)) => {}
                        Err(_) => {
                            crashed = true;
                            break;
                        }
                    }
                }
                (lease.coord_id, crashed)
            }));
        }
        std::thread::sleep(Duration::from_millis(2));
        stop.store(true, Ordering::Release);
        for h in handles {
            let (coord, crashed) = h.join().unwrap();
            if crashed {
                cluster.fd.declare_failed(coord).expect("recovered");
            } else {
                cluster.fd.deregister(coord);
            }
        }

        // Audit after every generation: total conserved, no stuck locks
        // (every account still writable).
        let total: i64 = (0..N_ACCOUNTS)
            .map(|k| balance(&cluster.peek(ACCOUNTS_TABLE, k).expect("account")))
            .sum();
        assert_eq!(
            total,
            N_ACCOUNTS as i64 * INITIAL,
            "{protocol:?} generation {generation}: money not conserved"
        );
    }
    // Final liveness: one coordinator touches every account.
    let (mut co, _lease) = cluster.coordinator().unwrap();
    for k in 0..N_ACCOUNTS {
        co.run(|txn| {
            let b = balance(&txn.read(ACCOUNTS_TABLE, k)?.expect("account"));
            txn.write(ACCOUNTS_TABLE, k, &value(b))
        })
        .unwrap();
    }
}

#[test]
fn pandora_conserves_money_under_crash_storm() {
    audit_under_crash_storm(ProtocolKind::Pandora, 8);
}

#[test]
fn baseline_conserves_money_under_crash_storm() {
    audit_under_crash_storm(ProtocolKind::Ford, 6);
}

#[test]
fn traditional_conserves_money_under_crash_storm() {
    audit_under_crash_storm(ProtocolKind::Traditional, 6);
}

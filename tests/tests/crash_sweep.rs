//! Exhaustive crash-point sweep: a transaction writing two keys is
//! crashed at *every* verb index, both before and after the verb, under
//! all three protocols. After recovery, the database must be atomic
//! (both keys old, or both new), replica-consistent, and unlocked — the
//! invariant that makes memory "always in a recoverable state"
//! (paper §1.1). This is the systematic version of the paper's random
//! crash injection.

use dkvs::{TableDef, TableId};
use pandora::{ProtocolKind, SimCluster, SystemConfig};
use rdma_sim::{CrashMode, CrashPlan};

const KV: TableId = TableId(0);

fn value(gen: u64) -> Vec<u8> {
    let mut v = vec![0u8; 16];
    v[0..8].copy_from_slice(&gen.to_le_bytes());
    v
}

fn gen_of(v: &[u8]) -> u64 {
    u64::from_le_bytes(v[0..8].try_into().unwrap())
}

fn build(protocol: ProtocolKind) -> SimCluster {
    let cluster = SimCluster::builder(protocol)
        .memory_nodes(3)
        .replication(2)
        .capacity_per_node(8 << 20)
        .table(TableDef::new(0, "kv", 16, 32, 8))
        .max_coord_slots(16)
        .config(SystemConfig::new(protocol))
        .build()
        .unwrap();
    cluster.bulk_load(KV, (0..16u64).map(|k| (k, value(0)))).unwrap();
    cluster
}

/// Crash a two-key write transaction at verb `at_op` and verify the
/// post-recovery state. Returns true if the crash plan actually fired.
fn sweep_once(protocol: ProtocolKind, at_op: u64, mode: CrashMode) -> bool {
    sweep_once_tear(protocol, at_op, mode, None)
}

/// Like [`sweep_once`], but with the `MidWrite` tear offset pinned to
/// `tear_pp`/1024 of the torn payload (`None` keeps the default
/// midpoint tear).
fn sweep_once_tear(
    protocol: ProtocolKind,
    at_op: u64,
    mode: CrashMode,
    tear_pp: Option<u32>,
) -> bool {
    let cluster = build(protocol);
    let (mut co, lease) = cluster.coordinator().unwrap();
    if let Some(pp) = tear_pp {
        co.injector().set_tear_point(pp);
    }
    co.injector().arm(CrashPlan { at_op, mode });
    let commit_result = {
        let mut txn = co.begin();
        txn.write(KV, 3, &value(1))
            .and_then(|()| txn.write(KV, 7, &value(1)))
            .and_then(|()| txn.commit())
    };
    let fired = co.injector().is_crashed();
    if fired {
        co.gate().mark_dead();
        cluster.fd.declare_failed(lease.coord_id).expect("recovery runs");
    }

    // Atomicity: both keys at the same generation.
    let g3 = gen_of(&cluster.peek(KV, 3).expect("key 3"));
    let g7 = gen_of(&cluster.peek(KV, 7).expect("key 7"));
    assert_eq!(
        g3, g7,
        "{protocol:?} crash {mode:?}@{at_op}: atomicity violated (gens {g3} vs {g7}, commit={commit_result:?})"
    );
    // Commit-ack semantics: an acked commit must survive recovery.
    if commit_result.is_ok() {
        assert_eq!(g3, 1, "{protocol:?} crash {mode:?}@{at_op}: acked commit lost");
    }
    // Replica consistency + no *live* leaked locks. Under PILL, a
    // NotLogged stray lock legitimately remains after recovery — its
    // owner is in the failed-ids set, which makes it stealable (and
    // therefore semantically free); Baseline/Traditional scrub locks
    // eagerly during their stop-the-world recovery.
    for key in [3u64, 7] {
        let mut seen = Vec::new();
        for node in cluster.replica_nodes(KV, key) {
            let (lock, version, val) = cluster.raw_slot(KV, key, node).expect("replica slot");
            if lock.is_locked() {
                assert!(
                    protocol == ProtocolKind::Pandora && cluster.ctx.failed.contains(lock.owner()),
                    "{protocol:?} crash {mode:?}@{at_op}: leaked live lock on key {key}"
                );
            }
            seen.push((version, val));
        }
        assert!(
            seen.windows(2).all(|w| w[0] == w[1]),
            "{protocol:?} crash {mode:?}@{at_op}: replicas diverge on key {key}"
        );
    }

    // Liveness: both keys must be writable by a fresh coordinator
    // (stealing the stray if one remains), and the write is atomic.
    if fired {
        let (mut co2, _l2) = cluster.coordinator().unwrap();
        co2.run(|txn| {
            txn.write(KV, 3, &value(9))?;
            txn.write(KV, 7, &value(9))
        })
        .unwrap_or_else(|e| {
            panic!("{protocol:?} crash {mode:?}@{at_op}: keys not writable after recovery: {e}")
        });
        assert_eq!(gen_of(&cluster.peek(KV, 3).unwrap()), 9);
        assert_eq!(gen_of(&cluster.peek(KV, 7).unwrap()), 9);
    }
    fired
}

fn sweep(protocol: ProtocolKind) {
    let mut fired_any = false;
    let mut never_fired_from = None;
    for at_op in 1..=40u64 {
        for mode in [CrashMode::BeforeOp, CrashMode::AfterOp, CrashMode::MidWrite] {
            let fired = sweep_once(protocol, at_op, mode);
            fired_any |= fired;
            if !fired && never_fired_from.is_none() {
                never_fired_from = Some(at_op);
            }
        }
    }
    assert!(fired_any, "the sweep never crashed anything — op indexes wrong?");
    // The transaction has a bounded verb count; late indexes must not fire.
    assert!(
        never_fired_from.is_some(),
        "even op 40 fired — the txn is longer than the sweep covers"
    );
}

#[test]
fn pandora_survives_every_crash_point() {
    sweep(ProtocolKind::Pandora);
}

#[test]
fn baseline_survives_every_crash_point() {
    sweep(ProtocolKind::Ford);
}

#[test]
fn traditional_survives_every_crash_point() {
    sweep(ProtocolKind::Traditional);
}

#[test]
fn tear_extremes_survive_mid_write_crashes() {
    // MidWrite crashes historically always tore at the payload midpoint.
    // The extreme placements are the interesting ones: pp 0 means the
    // torn verb lands *nothing* (crash just before the write), pp 1024
    // means it lands *everything* (crash just after) — both must leave
    // the store recoverable at every verb index, for every protocol.
    for protocol in [ProtocolKind::Pandora, ProtocolKind::Ford, ProtocolKind::Traditional] {
        for pp in [0u32, 1024] {
            let mut fired_any = false;
            for at_op in 1..=20u64 {
                fired_any |= sweep_once_tear(protocol, at_op, CrashMode::MidWrite, Some(pp));
            }
            assert!(fired_any, "{protocol:?} tear pp={pp}: no crash point fired");
        }
    }
}

#[test]
fn seeded_tear_points_recover() {
    // Seed-derived tear placements (the chaos harness path): each seed
    // deterministically picks a tear offset; sweeping a few verb indexes
    // under each must recover like the midpoint default does.
    for seed in [1u64, 7, 42] {
        let probe = rdma_sim::FaultInjector::new();
        probe.seed_tear_point(seed);
        let pp = probe.tear_point();
        for at_op in [3u64, 6, 9, 12] {
            sweep_once_tear(ProtocolKind::Pandora, at_op, CrashMode::MidWrite, Some(pp));
        }
    }
}

#[test]
fn double_recovery_after_any_crash_point_is_idempotent() {
    // Re-run recovery after the fact at a few interesting crash points
    // (post-lock, post-log, mid-apply, pre-unlock).
    for at_op in [2u64, 5, 8, 11, 14] {
        let cluster = build(ProtocolKind::Pandora);
        let (mut co, lease) = cluster.coordinator().unwrap();
        co.injector().arm(CrashPlan { at_op, mode: CrashMode::AfterOp });
        {
            let mut txn = co.begin();
            let _ = txn
                .write(KV, 3, &value(1))
                .and_then(|()| txn.write(KV, 7, &value(1)))
                .and_then(|()| txn.commit());
        }
        if !co.injector().is_crashed() {
            continue;
        }
        co.gate().mark_dead();
        let rc = cluster.fd.recovery();
        let r1 = rc.recover_pandora(lease.coord_id, lease.endpoint);
        let g3_first = gen_of(&cluster.peek(KV, 3).unwrap());
        let r2 = rc.recover_pandora(lease.coord_id, lease.endpoint);
        let g3_second = gen_of(&cluster.peek(KV, 3).unwrap());
        assert_eq!(g3_first, g3_second, "second recovery changed state at op {at_op}");
        assert_eq!(r2.logged_txns, 0, "logs must be truncated after the first pass");
        let _ = r1;
    }
}

#[test]
fn simultaneous_coordinator_failures_recover_atomically() {
    // Three coordinators writing disjoint key pairs all crash (at
    // different verb offsets) BEFORE any recovery runs — the FD then
    // processes the failures one by one, as a real detector sweeping a
    // dead compute server would. Every pair must stay atomic and every
    // key writable afterwards.
    for offsets in [[2u64, 5, 8], [3, 9, 12], [4, 4, 4]] {
        let cluster = build(ProtocolKind::Pandora);
        let pairs: [(u64, u64); 3] = [(0, 1), (4, 5), (10, 11)];
        let mut crashed = Vec::new();
        for (i, &(a, b)) in pairs.iter().enumerate() {
            let (mut co, lease) = cluster.coordinator().unwrap();
            co.injector().arm(CrashPlan { at_op: offsets[i], mode: CrashMode::AfterOp });
            {
                let mut txn = co.begin();
                let _ = txn
                    .write(KV, a, &value(1))
                    .and_then(|()| txn.write(KV, b, &value(1)))
                    .and_then(|()| txn.commit());
            }
            assert!(co.injector().is_crashed(), "offset {} did not fire", offsets[i]);
            co.gate().mark_dead();
            crashed.push((co, lease));
        }
        for (_, lease) in &crashed {
            cluster.fd.declare_failed(lease.coord_id).expect("recovery");
        }
        let (mut fresh, _lf) = cluster.coordinator().unwrap();
        for &(a, b) in &pairs {
            let ga = gen_of(&cluster.peek(KV, a).unwrap());
            let gb = gen_of(&cluster.peek(KV, b).unwrap());
            assert_eq!(ga, gb, "pair ({a},{b}) torn after multi-failure recovery");
            fresh
                .run(|txn| {
                    txn.write(KV, a, &value(9))?;
                    txn.write(KV, b, &value(9))
                })
                .unwrap_or_else(|e| panic!("pair ({a},{b}) not writable: {e}"));
        }
    }
}

#[test]
fn successive_failures_on_the_same_keys_recover() {
    // co1 crashes holding the locks on a key pair; after its recovery,
    // co2 steals the strays, writes the same pair, and crashes
    // mid-commit itself. The second recovery must still produce an
    // atomic, writable pair — stray-lock stealing composes with repeated
    // failures on the same objects.
    for second_offset in [2u64, 6, 9, 12] {
        let cluster = build(ProtocolKind::Pandora);

        let (mut co1, l1) = cluster.coordinator().unwrap();
        co1.injector().arm(CrashPlan { at_op: 4, mode: CrashMode::AfterOp });
        {
            let mut txn = co1.begin();
            let _ = txn
                .write(KV, 3, &value(1))
                .and_then(|()| txn.write(KV, 7, &value(1)))
                .and_then(|()| txn.commit());
        }
        assert!(co1.injector().is_crashed());
        co1.gate().mark_dead();
        cluster.fd.declare_failed(l1.coord_id).unwrap();

        let (mut co2, l2) = cluster.coordinator().unwrap();
        co2.injector()
            .arm(CrashPlan { at_op: second_offset, mode: CrashMode::MidWrite });
        {
            let mut txn = co2.begin();
            let _ = txn
                .write(KV, 3, &value(2))
                .and_then(|()| txn.write(KV, 7, &value(2)))
                .and_then(|()| txn.commit());
        }
        if co2.injector().is_crashed() {
            co2.gate().mark_dead();
            cluster.fd.declare_failed(l2.coord_id).unwrap();
        }

        let g3 = gen_of(&cluster.peek(KV, 3).unwrap());
        let g7 = gen_of(&cluster.peek(KV, 7).unwrap());
        assert_eq!(g3, g7, "second failure at op {second_offset} tore the pair");

        let (mut co3, _l3) = cluster.coordinator().unwrap();
        co3.run(|txn| {
            txn.write(KV, 3, &value(9))?;
            txn.write(KV, 7, &value(9))
        })
        .unwrap_or_else(|e| panic!("keys dead after two failures (op {second_offset}): {e}"));
    }
}

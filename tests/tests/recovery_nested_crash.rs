//! Recovery under fire: the recoverer itself is killed at every
//! step/verb boundary of the four-step protocol (paper §3.2), and a
//! surviving `QuorumFd` replica takes over by re-running recovery from
//! scratch. The sweep asserts convergence: zero residual locks,
//! conserved bank balances, and commit/abort decisions identical to an
//! uninterrupted recovery of the same crash state. Compound scenarios
//! add a memory-node death inside the takeover window and overlapping
//! recoveries of the same coordinator (double-steal / double-truncate
//! audit). Failures dump the flight recorder; replay a cell from the
//! printed label (the coordinator crash offset is the seed).

use std::sync::{Arc, Barrier};
use std::time::Duration;

use dkvs::{TableDef, TableId};
use pandora::{
    FdOutcome, ProtocolKind, QuorumFd, RecoveryCoordinator, RecoveryCrashPlan, RecoveryStep,
    SimCluster, SystemConfig, TxnRequest,
};
use rdma_sim::{ChaosConfig, CrashMode, CrashPlan, EndpointId, NodeId};

const ACCOUNTS: TableId = TableId(0);
const N_ACCOUNTS: u64 = 16;
const INITIAL: i64 = 1_000;
const AMOUNT: i64 = 7;

/// Pinned coordinator crash offsets — the sweep's seeds. Early (locks
/// parked, nothing logged), mid (logged, partially applied), late
/// (applied / post-commit): the three qualitatively different states a
/// recoverer can die on top of.
const PINNED_SEEDS: [u64; 3] = [2, 8, 14];

fn value(b: i64) -> Vec<u8> {
    let mut v = vec![0u8; 16];
    v[0..8].copy_from_slice(&b.to_le_bytes());
    v
}

fn balance(v: &[u8]) -> i64 {
    i64::from_le_bytes(v[0..8].try_into().unwrap())
}

fn build(chaos: Option<ChaosConfig>, flight: bool) -> SimCluster {
    let mut b = SimCluster::builder(ProtocolKind::Pandora)
        .memory_nodes(3)
        .replication(2)
        .capacity_per_node(8 << 20)
        .table(TableDef::new(0, "kv", 16, 32, 8))
        .max_coord_slots(16)
        .config(SystemConfig::new(ProtocolKind::Pandora));
    if let Some(cfg) = chaos {
        b = b.chaos(cfg);
    }
    if flight {
        b = b.flight(4096);
    }
    let cluster = b.build().unwrap();
    cluster
        .bulk_load(ACCOUNTS, (0..N_ACCOUNTS).map(|k| (k, value(INITIAL))))
        .unwrap();
    cluster
}

/// Run a bank transfer `from -> to` and kill the coordinator at verb
/// `at_op`, leaving its locks/log entries behind. Returns the dead
/// coordinator's id and endpoint.
fn crash_transfer(cluster: &SimCluster, at_op: u64, from: u64, to: u64) -> (u16, EndpointId) {
    let (mut co, lease) = cluster.coordinator().unwrap();
    co.injector().arm(CrashPlan { at_op, mode: CrashMode::AfterOp });
    {
        let mut txn = co.begin();
        let _ = (|| {
            let a = balance(&txn.read(ACCOUNTS, from)?.expect("from account"));
            let b = balance(&txn.read(ACCOUNTS, to)?.expect("to account"));
            txn.write(ACCOUNTS, from, &value(a - AMOUNT))?;
            txn.write(ACCOUNTS, to, &value(b + AMOUNT))?;
            txn.commit()
        })();
    }
    assert!(co.injector().is_crashed(), "crash offset {at_op} did not fire");
    co.gate().mark_dead();
    (lease.coord_id, lease.endpoint)
}

fn balances(cluster: &SimCluster) -> Vec<i64> {
    (0..N_ACCOUNTS)
        .map(|k| balance(&cluster.peek(ACCOUNTS, k).unwrap_or_else(|| panic!("account {k}"))))
        .collect()
}

/// Post-recovery cleanliness: failed ids recycled, zero residual locks
/// on any live replica, money conserved.
fn audit_clean(cluster: &SimCluster, label: &str) {
    cluster.fd.recovery().recycle_failed_ids();
    assert_eq!(cluster.ctx.failed.population(), 0, "{label}: failed ids not recycled");
    let dead = cluster.ctx.dead_nodes();
    for k in 0..N_ACCOUNTS {
        for node in cluster.replica_nodes(ACCOUNTS, k) {
            if dead.contains(&node) {
                continue;
            }
            let (lock, _, _) = cluster
                .raw_slot(ACCOUNTS, k, node)
                .unwrap_or_else(|| panic!("{label}: account {k} missing on {node:?}"));
            assert!(
                !lock.is_locked(),
                "{label}: residual lock on account {k} node {node:?} (owner {})",
                lock.owner()
            );
        }
    }
    let total: i64 = balances(cluster).iter().sum();
    assert_eq!(total, N_ACCOUNTS as i64 * INITIAL, "{label}: money not conserved");
}

/// The uninterrupted run: same coordinator crash, recovery with no
/// nested failures. Its balances are the commit/abort decisions the
/// nested runs must reproduce.
fn control_balances(at_op: u64) -> Vec<i64> {
    let cluster = build(None, false);
    let (coord, _ep) = crash_transfer(&cluster, at_op, 3, 7);
    let report = cluster.fd.declare_failed(coord).expect("control recovery");
    assert!(report.completed);
    assert_eq!(report.attempts, 1, "control recovery must not need takeovers");
    audit_clean(&cluster, &format!("control at_op {at_op}"));
    balances(&cluster)
}

/// The tentpole sweep: (recovery step × crash verb × pinned seed); each
/// cell kills the recovering FD replica and requires the surviving
/// replica's takeover to converge to the control state.
#[test]
fn nested_crash_sweep_takeover_converges_to_control() {
    for &seed_op in &PINNED_SEEDS {
        let control = control_balances(seed_op);
        let mut takeover_cells = 0usize;
        let mut quiet_cells = 0usize;
        for step in RecoveryStep::ALL {
            for at_verb in [0u64, 1, 2, 7] {
                let label = format!("seed {seed_op}, kill {}:{at_verb}", step.name());
                let cluster = Arc::new(build(None, true));
                let flight = cluster.flight.clone().expect("flight recorder installed");
                flight.set_chaos_seed(seed_op);
                pandora::dump_on_panic(
                    Some(&flight),
                    "recovery-nested-crash",
                    std::panic::AssertUnwindSafe(|| {
                        let (coord, _ep) = crash_transfer(&cluster, seed_op, 3, 7);
                        cluster.fd.arm_recovery_crash(RecoveryCrashPlan { step, at_verb });
                        let qfd = QuorumFd::new(Arc::clone(&cluster.fd), 3);
                        let outcome = qfd.detect_and_recover(coord, Duration::from_millis(3));
                        let report = match outcome {
                            FdOutcome::Recovered(r) => r,
                            other => panic!("{label}: expected a recovery, got {other:?}"),
                        };
                        assert!(report.completed, "{label}: recovery incomplete after takeovers");
                        let takeovers = report.attempts.saturating_sub(1);
                        if takeovers > 0 {
                            takeover_cells += 1;
                            // The dead recoverer was an FD replica; later
                            // quorum math must see the loss.
                            assert_eq!(
                                qfd.live_replicas(),
                                3 - takeovers as usize,
                                "{label}: dead recoverer not reflected in the quorum"
                            );
                            let spans = flight.snapshot();
                            assert!(
                                spans.iter().any(|s| s.name == "recovery-takeover"),
                                "{label}: no takeover instant on the chaos track"
                            );
                            assert!(
                                spans.iter().any(|s| s.name.starts_with("crash-point-")),
                                "{label}: no crash-point instant on the chaos track"
                            );
                        } else {
                            quiet_cells += 1;
                        }
                        if at_verb == 0 {
                            // A kill at step entry always fires.
                            assert!(
                                takeovers >= 1,
                                "{label}: a step-entry kill must force a takeover"
                            );
                        }
                        audit_clean(&cluster, &label);
                        assert_eq!(
                            balances(&cluster),
                            control,
                            "{label}: decisions diverge from the uninterrupted recovery"
                        );
                    }),
                );
            }
        }
        assert!(
            takeover_cells >= 8,
            "seed {seed_op}: only {takeover_cells} cells exercised a takeover"
        );
        assert!(
            quiet_cells >= 1,
            "seed {seed_op}: every cell forced a takeover — overshoot semantics untested"
        );
    }
}

/// Compound failure: a memory node dies inside the takeover window, so
/// the re-run recovers against the post-promotion placement.
#[test]
fn memory_node_death_mid_recovery_recovers_against_promotion() {
    for &seed_op in &PINNED_SEEDS {
        let label = format!("mem-fail during recovery, seed {seed_op}");
        let cluster = Arc::new(build(None, true));
        let flight = cluster.flight.clone().expect("flight recorder installed");
        pandora::dump_on_panic(
            Some(&flight),
            "recovery-nested-memfail",
            std::panic::AssertUnwindSafe(|| {
                let (coord, _ep) = crash_transfer(&cluster, seed_op, 3, 7);
                // Kill the recoverer one verb into log recovery (always
                // fires), and arm node 2 to die before the takeover.
                cluster.fd.arm_recovery_crash(RecoveryCrashPlan {
                    step: RecoveryStep::LogRecovery,
                    at_verb: 1,
                });
                cluster.fd.arm_nested_mem_fail(NodeId(2));
                let qfd = QuorumFd::new(Arc::clone(&cluster.fd), 3);
                let outcome = qfd.detect_and_recover(coord, Duration::from_millis(3));
                let report = match outcome {
                    FdOutcome::Recovered(r) => r,
                    other => panic!("{label}: expected a recovery, got {other:?}"),
                };
                assert!(report.completed, "{label}: recovery incomplete");
                assert!(report.attempts > 1, "{label}: no takeover — mem-fail never injected");
                assert!(
                    cluster.ctx.dead_nodes().contains(&NodeId(2)),
                    "{label}: node 2 not dead after the nested failure"
                );
                let spans = flight.snapshot();
                assert!(
                    spans.iter().any(|s| s.name == "mem-fail-during-recovery"),
                    "{label}: compound failure not on the chaos track"
                );
                assert!(
                    spans.iter().any(|s| s.name == "mem-fail-promotion"),
                    "{label}: promotion not on the chaos track"
                );
                audit_clean(&cluster, &label);
                // With a replica gone mid-recovery the roll decision may
                // legitimately differ from the all-replicas-alive control
                // (§3.2.5: commit-ack is over *live* replicas) — but it
                // must still be one of the two atomic outcomes.
                let b = balances(&cluster);
                let applied = b[3] == INITIAL - AMOUNT && b[7] == INITIAL + AMOUNT;
                let rolled_back = b[3] == INITIAL && b[7] == INITIAL;
                assert!(applied || rolled_back, "{label}: torn outcome ({}, {})", b[3], b[7]);
                // The pair stays transactable on the promoted placement.
                let (mut fresh, _lf) = cluster.coordinator().unwrap();
                fresh
                    .run(|txn| {
                        let a = balance(&txn.read(ACCOUNTS, 3)?.expect("from"));
                        let b = balance(&txn.read(ACCOUNTS, 7)?.expect("to"));
                        txn.write(ACCOUNTS, 3, &value(a - 1))?;
                        txn.write(ACCOUNTS, 7, &value(b + 1))
                    })
                    .unwrap_or_else(|e| panic!("{label}: keys dead after promotion: {e}"));
            }),
        );
    }
}

/// Overlapping recoveries of the *same* coordinator: two RCs race the
/// full four steps concurrently. Owner-checked CASes and truncate-before-
/// unlock make every interleaving converge; the audit looks specifically
/// for double-steal (a lock released twice frees someone else's lock)
/// and double-notification (epoch bumped twice for one failure).
#[test]
fn overlapping_recoveries_of_the_same_coordinator_converge() {
    for &seed_op in &PINNED_SEEDS {
        let label = format!("overlapping recovery, seed {seed_op}");
        let control = control_balances(seed_op);
        let cluster = Arc::new(build(None, false));
        let (coord, ep) = crash_transfer(&cluster, seed_op, 3, 7);
        let epoch0 = cluster.ctx.failed.epoch();

        let barrier = Arc::new(Barrier::new(2));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let cluster = Arc::clone(&cluster);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let rc = RecoveryCoordinator::new(Arc::clone(&cluster.ctx))
                        .expect("spawn racing RC");
                    barrier.wait();
                    rc.recover_pandora(coord, ep)
                })
            })
            .collect();
        let reports: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(reports.iter().all(|r| r.completed), "{label}: a racing recovery failed");
        // Stray notification is idempotent: one failure, one epoch bump.
        assert_eq!(
            cluster.ctx.failed.epoch(),
            epoch0 + 1,
            "{label}: concurrent recoveries double-notified"
        );
        audit_clean(&cluster, &label);
        assert_eq!(
            balances(&cluster),
            control,
            "{label}: racing recoveries diverged from a single one"
        );
    }
}

/// Two distinct coordinators recovered concurrently while a recoverer
/// kill is armed: whichever recovery draws the doomed RC takes over;
/// both pairs must end atomic, unlocked, and conserved.
#[test]
fn concurrent_distinct_recoveries_with_a_killed_recoverer() {
    let cluster = Arc::new(build(None, false));
    let (c1, _e1) = crash_transfer(&cluster, 8, 3, 7);
    let (c2, _e2) = crash_transfer(&cluster, 8, 5, 9);
    cluster
        .fd
        .arm_recovery_crash(RecoveryCrashPlan { step: RecoveryStep::LogRecovery, at_verb: 1 });

    let barrier = Arc::new(Barrier::new(2));
    let handles: Vec<_> = [c1, c2]
        .into_iter()
        .map(|coord| {
            let cluster = Arc::clone(&cluster);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                cluster.fd.declare_failed(coord).expect("recovery runs")
            })
        })
        .collect();
    let reports: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(reports.iter().all(|r| r.completed), "a concurrent recovery failed");
    assert!(reports.iter().any(|r| r.attempts > 1), "the armed recoverer kill was never consumed");
    audit_clean(&cluster, "concurrent distinct recoveries");
    let b = balances(&cluster);
    for (from, to) in [(3usize, 7usize), (5, 9)] {
        let applied = b[from] == INITIAL - AMOUNT && b[to] == INITIAL + AMOUNT;
        let rolled_back = b[from] == INITIAL && b[to] == INITIAL;
        assert!(applied || rolled_back, "pair ({from},{to}) torn: ({}, {})", b[from], b[to]);
    }
}

/// Interleaved-scheduler crash sweep: a coordinator driving K > 1
/// transactions through the slot scheduler is killed at every verb
/// offset, leaving several log lanes and lock sets behind at once.
/// One recovery pass must resolve *all* of them — per-pair atomicity,
/// zero residual locks, conservation — and the sweep must hit at least
/// one state where multiple lanes held entries (the multi-lane walk is
/// actually exercised, not just the PR-9 single-lane case).
#[test]
fn interleaved_crash_sweep_recovers_all_inflight_txns() {
    const PAIRS: [(u64, u64); 4] = [(0, 8), (1, 9), (2, 10), (3, 11)];

    let build_interleaved = || {
        let cluster = SimCluster::builder(ProtocolKind::Pandora)
            .memory_nodes(3)
            .replication(2)
            .capacity_per_node(8 << 20)
            .table(TableDef::new(0, "kv", 16, 32, 8))
            .max_coord_slots(16)
            .config(
                SystemConfig::new(ProtocolKind::Pandora)
                    .with_inflight_txns(8)
                    .with_qp_stripes(2),
            )
            .build()
            .unwrap();
        cluster
            .bulk_load(ACCOUNTS, (0..N_ACCOUNTS).map(|k| (k, value(INITIAL))))
            .unwrap();
        cluster
    };

    let mut max_logged = 0usize;
    let mut fired_cells = 0u64;
    for at_op in 1..=48u64 {
        let label = format!("interleaved crash at verb {at_op}");
        let cluster = build_interleaved();
        let (mut co, lease) = cluster.coordinator().unwrap();
        co.injector().arm(CrashPlan { at_op, mode: CrashMode::AfterOp });
        let reqs: Vec<TxnRequest> = PAIRS
            .iter()
            .map(|&(from, to)| {
                TxnRequest::new()
                    .update(ACCOUNTS, from, |old| value(balance(old) - AMOUNT))
                    .update(ACCOUNTS, to, |old| value(balance(old) + AMOUNT))
            })
            .collect();
        let results = co.run_interleaved(&reqs);
        if !co.injector().is_crashed() {
            // Past the batch's last verb: everything committed cleanly.
            assert!(results.iter().all(|r| r.is_ok()), "{label}: clean run had failures");
            continue;
        }
        fired_cells += 1;
        co.gate().mark_dead();
        let report = cluster.fd.declare_failed(lease.coord_id).expect("recovery runs");
        assert!(report.completed, "{label}: recovery incomplete");
        max_logged = max_logged.max(report.logged_txns);
        audit_clean(&cluster, &label);
        let b = balances(&cluster);
        for &(from, to) in &PAIRS {
            let (from, to) = (from as usize, to as usize);
            let applied = b[from] == INITIAL - AMOUNT && b[to] == INITIAL + AMOUNT;
            let rolled_back = b[from] == INITIAL && b[to] == INITIAL;
            assert!(
                applied || rolled_back,
                "{label}: pair ({from},{to}) torn: ({}, {})",
                b[from],
                b[to]
            );
            // A transaction the scheduler acked as committed must
            // survive recovery (post-ack durability).
            let idx = PAIRS.iter().position(|&(f, _)| f == from as u64).unwrap();
            if results[idx].is_ok() {
                assert!(applied, "{label}: acked txn ({from},{to}) rolled back by recovery");
            }
        }
    }
    assert!(fired_cells >= 24, "sweep too short: only {fired_cells} cells crashed mid-flight");
    assert!(
        max_logged >= 2,
        "no crash state had multiple logged lanes (max {max_logged}) — the multi-lane \
         recovery walk was never exercised"
    );
}

/// Recovery's own verbs run under the chaos model: heavy transient
/// faults over the whole recovery path must delay but never change the
/// outcome.
#[test]
fn chaos_enabled_recovery_completes_and_converges() {
    let control = control_balances(8);
    let mut engaged = 0u64;
    for seed in [0xBEEF01u64, 0xBEEF02, 0xBEEF03, 0xBEEF04, 0xBEEF05] {
        let cluster = build(Some(ChaosConfig::heavy(seed)), true);
        let chaos = cluster.chaos.clone().expect("chaos installed");
        let (coord, _ep) = crash_transfer(&cluster, 8, 3, 7);
        // Chaos covers exactly the recovery (the workload ran clean, so
        // any divergence from control is recovery's fault).
        chaos.set_enabled(true);
        let report = cluster.fd.declare_failed(coord).expect("recovery runs");
        chaos.set_enabled(false);
        assert!(report.completed, "seed {seed:#x}: recovery never completed under chaos");
        engaged += cluster.ctx.resilience.snapshot().retries;
        audit_clean(&cluster, &format!("chaos seed {seed:#x}"));
        assert_eq!(
            balances(&cluster),
            control,
            "seed {seed:#x}: chaos changed the recovery decision"
        );
    }
    assert!(engaged > 0, "five heavy-chaos recoveries never engaged the retry machinery");
}

/// Zero-cost-off for the recovery path: a cluster with a chaos model
/// installed but never enabled performs a byte-identical recovery —
/// same verb counts on the wire, same final state.
#[test]
fn disabled_chaos_recovery_is_invisible() {
    let run = |cluster: SimCluster| {
        let (coord, _ep) = crash_transfer(&cluster, 8, 3, 7);
        let report = cluster.fd.declare_failed(coord).expect("recovery runs");
        assert!(report.completed);
        cluster.fd.recovery().recycle_failed_ids();
        (cluster.ctx.fabric.total_counters(), balances(&cluster))
    };
    let plain = run(build(None, false));
    let armed = run(build(Some(ChaosConfig::heavy(7)), false));
    assert_eq!(plain.0, armed.0, "recovery verb counts diverge with chaos installed but disabled");
    assert_eq!(plain.1, armed.1, "recovery outcome diverges with chaos installed but disabled");
}

//! Model-based property test: a random sequence of transactional
//! operations against the DKVS must behave exactly like the same
//! sequence against an in-memory `HashMap` model — for every protocol.
//! (Single coordinator: captures the sequential semantics of the full
//! stack — hashing, probing, slots, replication, logging, commit.)

use std::collections::HashMap;

use dkvs::{TableDef, TableId};
use pandora::{AbortReason, ProtocolKind, SimCluster, TxnError};
use proptest::prelude::*;

const KV: TableId = TableId(0);

#[derive(Debug, Clone, Copy)]
enum ModelOp {
    Read(u64),
    Write(u64, u64),
    Insert(u64, u64),
    Delete(u64),
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum TxnEnd {
    Commit,
    Abort,
}

fn arb_op() -> impl Strategy<Value = ModelOp> {
    prop_oneof![
        (0u64..24).prop_map(ModelOp::Read),
        (0u64..24, any::<u64>()).prop_map(|(k, v)| ModelOp::Write(k, v)),
        (0u64..24, any::<u64>()).prop_map(|(k, v)| ModelOp::Insert(k, v)),
        (0u64..24).prop_map(ModelOp::Delete),
    ]
}

fn arb_txn() -> impl Strategy<Value = (Vec<ModelOp>, TxnEnd)> {
    (
        proptest::collection::vec(arb_op(), 1..8),
        prop_oneof![4 => Just(TxnEnd::Commit), 1 => Just(TxnEnd::Abort)],
    )
}

fn value(v: u64) -> Vec<u8> {
    let mut b = vec![0u8; 16];
    b[0..8].copy_from_slice(&v.to_le_bytes());
    b
}

fn decode(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[0..8].try_into().unwrap())
}

fn run_model(protocol: ProtocolKind, txns: &[(Vec<ModelOp>, TxnEnd)]) {
    let cluster = SimCluster::builder(protocol)
        .memory_nodes(2)
        .replication(2)
        .capacity_per_node(4 << 20)
        .table(TableDef::new(0, "kv", 16, 16, 8))
        .max_coord_slots(8)
        .build()
        .unwrap();
    // Half the key space pre-exists.
    cluster.bulk_load(KV, (0..12u64).map(|k| (k, value(k)))).unwrap();
    let mut committed: HashMap<u64, u64> = (0..12u64).map(|k| (k, k)).collect();

    let (mut co, _lease) = cluster.coordinator().unwrap();
    for (ops, end) in txns {
        let mut view = committed.clone();
        let mut txn = co.begin();
        let mut aborted = false;
        for &op in ops {
            let r: Result<(), TxnError> = match op {
                ModelOp::Read(k) => match txn.read(KV, k) {
                    Ok(v) => {
                        assert_eq!(
                            v.map(|b| decode(&b)),
                            view.get(&k).copied(),
                            "read mismatch on key {k}"
                        );
                        Ok(())
                    }
                    Err(e) => Err(e),
                },
                ModelOp::Write(k, v) => match txn.write(KV, k, &value(v)) {
                    Ok(()) => {
                        assert!(view.contains_key(&k), "write succeeded on absent key {k}");
                        view.insert(k, v);
                        Ok(())
                    }
                    Err(e @ TxnError::Aborted(AbortReason::NotFound)) => {
                        assert!(!view.contains_key(&k), "write NotFound on present key {k}");
                        Err(e)
                    }
                    Err(e) => panic!("unexpected write error: {e:?}"),
                },
                ModelOp::Insert(k, v) => match txn.insert(KV, k, &value(v)) {
                    Ok(()) => {
                        assert!(!view.contains_key(&k), "insert succeeded on present key {k}");
                        view.insert(k, v);
                        Ok(())
                    }
                    Err(e @ TxnError::Aborted(AbortReason::AlreadyExists)) => {
                        assert!(view.contains_key(&k), "insert AlreadyExists on absent key {k}");
                        Err(e)
                    }
                    Err(e) => panic!("unexpected insert error: {e:?}"),
                },
                ModelOp::Delete(k) => match txn.delete(KV, k) {
                    Ok(()) => {
                        assert!(view.contains_key(&k), "delete succeeded on absent key {k}");
                        view.remove(&k);
                        Ok(())
                    }
                    Err(e @ TxnError::Aborted(AbortReason::NotFound)) => {
                        assert!(!view.contains_key(&k), "delete NotFound on present key {k}");
                        Err(e)
                    }
                    Err(e) => panic!("unexpected delete error: {e:?}"),
                },
            };
            if r.is_err() {
                aborted = true; // the op aborted and closed the txn
                break;
            }
        }
        if aborted {
            // Aborted transactions leave the committed state untouched.
            continue;
        }
        match end {
            TxnEnd::Commit => {
                txn.commit().expect("single-coordinator commit must succeed");
                committed = view;
            }
            TxnEnd::Abort => {
                let _ = txn.abort();
            }
        }
    }

    // Final-state equivalence through fresh read-only transactions.
    for k in 0..24u64 {
        let got = cluster.peek(KV, k).map(|b| decode(&b));
        assert_eq!(got, committed.get(&k).copied(), "final state mismatch on key {k}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn pandora_matches_hashmap_model(txns in proptest::collection::vec(arb_txn(), 1..12)) {
        run_model(ProtocolKind::Pandora, &txns);
    }

    #[test]
    fn ford_matches_hashmap_model(txns in proptest::collection::vec(arb_txn(), 1..12)) {
        run_model(ProtocolKind::Ford, &txns);
    }

    #[test]
    fn traditional_matches_hashmap_model(txns in proptest::collection::vec(arb_txn(), 1..12)) {
        run_model(ProtocolKind::Traditional, &txns);
    }
}

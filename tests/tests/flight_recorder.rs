//! End-to-end flight recorder coverage: a multi-coordinator run with a
//! declared failure must leave (a) a valid Chrome trace-event JSON with
//! spans from at least two coordinator tracks plus the chaos track, and
//! (b) a non-empty metrics timeline spanning the recovery window. Also
//! the zero-cost-off guarantee: a disabled recorder is byte-invisible
//! on the wire (mirrors `disabled_chaos_is_invisible`).

use std::sync::Arc;
use std::time::{Duration, Instant};

use dkvs::{TableDef, TableId};
use pandora::obs::json;
use pandora::{Coordinator, ProtocolKind, SimCluster, TxnError};
use pandora_workloads::{RunnerConfig, Workload, WorkloadRunner};
use rand::rngs::StdRng;
use rand::RngExt;

const TABLE: TableId = TableId(0);
const N_KEYS: u64 = 64;

fn value(x: i64) -> Vec<u8> {
    let mut v = vec![0u8; 16];
    v[0..8].copy_from_slice(&x.to_le_bytes());
    v
}

fn balance(v: &[u8]) -> i64 {
    i64::from_le_bytes(v[0..8].try_into().unwrap())
}

/// Minimal transfer workload (conservation-friendly, like the soak's).
struct Transfers;

impl Workload for Transfers {
    fn name(&self) -> &'static str {
        "flight-transfers"
    }

    fn tables(&self) -> Vec<TableDef> {
        vec![TableDef::sized_for(0, "t", 16, N_KEYS)]
    }

    fn load(&self, cluster: &SimCluster) {
        cluster.bulk_load(TABLE, (0..N_KEYS).map(|k| (k, value(100)))).unwrap();
    }

    fn execute(&self, co: &mut Coordinator, rng: &mut StdRng) -> Result<(), TxnError> {
        let from = rng.random_range(0..N_KEYS);
        let to = (from + 1 + rng.random_range(0..N_KEYS - 1)) % N_KEYS;
        let mut txn = co.begin();
        let a = balance(&txn.read(TABLE, from)?.expect("from"));
        let b = balance(&txn.read(TABLE, to)?.expect("to"));
        let amount = 3.min(a).max(0);
        txn.write(TABLE, from, &value(a - amount))?;
        txn.write(TABLE, to, &value(b + amount))?;
        txn.commit()
    }
}

fn cluster_with_flight(capacity: Option<usize>) -> Arc<SimCluster> {
    let mut b = SimCluster::builder(ProtocolKind::Pandora)
        .memory_nodes(2)
        .replication(2)
        .capacity_per_node(32 << 20)
        .table(TableDef::sized_for(0, "t", 16, N_KEYS))
        .max_coord_slots(64);
    if let Some(cap) = capacity {
        b = b.flight(cap);
    }
    let cluster = Arc::new(b.build().unwrap());
    Transfers.load(&cluster);
    cluster
}

/// The ISSUE acceptance path: a run with a fail-over produces a Chrome
/// trace with ≥2 coordinator tracks and a chaos-track event, and the
/// timeline samples span the recovery window.
#[test]
fn trace_covers_coordinators_chaos_track_and_recovery_timeline() {
    let cluster = cluster_with_flight(Some(4096));
    let rec = cluster.flight.clone().expect("flight recorder installed");

    let runner = WorkloadRunner::spawn(
        Arc::clone(&cluster),
        Arc::new(Transfers),
        RunnerConfig { coordinators: 3, seed: 11, phase_metrics: true },
    );
    let timeline = runner.timeline_sampler(Duration::from_millis(5));
    let t0 = Instant::now();

    std::thread::sleep(Duration::from_millis(60));
    // Fail one coordinator and recover it through the detector: the
    // trigger lands on the chaos track, the four steps on the failed
    // coordinator's track.
    let victims = runner.crash_first(1);
    assert_eq!(victims.len(), 1);
    let crash_at_ms = t0.elapsed().as_millis() as u64;
    for v in &victims {
        let report = cluster.fd.declare_failed(*v).expect("recovery ran");
        assert!(report.completed);
    }
    std::thread::sleep(Duration::from_millis(40));
    runner.stop_and_join();
    let points = timeline.finish();

    // Timeline spans the recovery window: samples before and after the
    // declared failure, with committed work recorded.
    assert!(!points.is_empty(), "timeline sampler produced no points");
    assert!(points.first().unwrap().at_ms <= crash_at_ms, "no pre-failure samples");
    assert!(points.last().unwrap().at_ms >= crash_at_ms, "no post-failure samples");
    assert!(points.iter().map(|p| p.committed_delta).sum::<u64>() > 0, "no committed work");

    // The trace parses as a Chrome trace-event array; every event
    // carries the loader-required keys.
    let trace = rec.chrome_trace();
    let doc = json::parse(&trace).expect("trace parses");
    let events = doc.as_array().expect("top level array");
    for ev in events {
        for key in ["ph", "ts", "pid", "tid", "name"] {
            assert!(ev.get(key).is_some(), "event missing {key}: {ev:?}");
        }
    }

    // Spans (not just metadata) from at least two coordinator tracks.
    let coord_tracks: std::collections::BTreeSet<u64> = events
        .iter()
        .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("X"))
        .filter_map(|e| e.get("tid").and_then(|v| v.as_u64()))
        .filter(|tid| (10..100_000).contains(tid))
        .collect();
    assert!(
        coord_tracks.len() >= 2,
        "expected spans from ≥2 coordinators, got tracks {coord_tracks:?}"
    );

    // The chaos track carries the recovery trigger instant.
    assert!(
        events.iter().any(|e| {
            e.get("tid").and_then(|v| v.as_u64()) == Some(1)
                && e.get("ph").and_then(|v| v.as_str()) == Some("i")
                && e.get("name").and_then(|v| v.as_str()) == Some("recovery-trigger")
        }),
        "chaos track missing the recovery-trigger instant"
    );

    // The four recovery steps were laid back onto the failed
    // coordinator's track.
    for step in ["detection", "link_termination", "log_recovery", "stray_notification"] {
        assert!(
            events.iter().any(|e| e.get("name").and_then(|v| v.as_str()) == Some(step)),
            "recovery step {step:?} missing from the trace"
        );
    }

    // Commit-path anatomy is present: whole-txn envelopes and phases.
    assert!(
        events.iter().any(|e| e.get("name").and_then(|v| v.as_str()) == Some("txn")),
        "no whole-transaction spans recorded"
    );
}

/// Zero-cost-off: a cluster with a recorder installed but *disabled* is
/// byte-identical on the wire to one with no recorder at all — same
/// fabric verb counters, same final state.
#[test]
fn disabled_flight_recorder_is_invisible() {
    let run = |cluster: Arc<SimCluster>| {
        let (mut co, lease) = cluster.coordinator().unwrap();
        for i in 0..200u64 {
            let from = (i * 7) % N_KEYS;
            let to = (from + 1 + (i * 13) % (N_KEYS - 1)) % N_KEYS;
            co.run(|txn| {
                let a = balance(&txn.read(TABLE, from)?.expect("from"));
                let b = balance(&txn.read(TABLE, to)?.expect("to"));
                let amount = 5.min(a).max(0);
                txn.write(TABLE, from, &value(a - amount))?;
                txn.write(TABLE, to, &value(b + amount))
            })
            .unwrap();
        }
        cluster.fd.deregister(lease.coord_id);
        co.gate().mark_dead();
        let finals: Vec<i64> =
            (0..N_KEYS).map(|k| balance(&cluster.peek(TABLE, k).unwrap())).collect();
        (cluster.ctx.fabric.total_counters(), finals)
    };

    let plain = run(cluster_with_flight(None));
    let disarmed = {
        let cluster = cluster_with_flight(Some(4096));
        cluster.flight.as_ref().unwrap().set_enabled(false);
        run(cluster)
    };
    assert_eq!(plain.0, disarmed.0, "verb counts diverge with a disabled recorder installed");
    assert_eq!(plain.1, disarmed.1, "final state diverges with a disabled recorder installed");
}

//! The interleaved-scheduler acceptance gate and its correctness
//! smoke tests: one logical coordinator keeping `inflight_txns`
//! independent commits in flight over a striped fabric must beat the
//! one-at-a-time classic engine by at least 2x committed throughput at
//! a 2 µs modeled RTT (low contention, warm caches). The timing gate is
//! release-only (debug builds measure the compiler, not the protocol);
//! the semantic tests run everywhere.

use std::time::{Duration, Instant};

use dkvs::{TableDef, TableId};
use pandora::{Coordinator, ProtocolKind, SimCluster, SystemConfig, TxnRequest};
use rdma_sim::LatencyModel;

const KV: TableId = TableId(0);
const VALUE_LEN: usize = 40;

fn value(n: u64) -> Vec<u8> {
    let mut v = vec![0u8; VALUE_LEN];
    v[0..8].copy_from_slice(&n.to_le_bytes());
    v
}

fn counter(v: &[u8]) -> u64 {
    u64::from_le_bytes(v[0..8].try_into().unwrap())
}

fn build(config: SystemConfig, rtt_us: u64) -> SimCluster {
    let mut b = SimCluster::builder(ProtocolKind::Pandora)
        .memory_nodes(3)
        .replication(2)
        .capacity_per_node(16 << 20)
        .table(TableDef::sized_for(0, "kv", VALUE_LEN, 4096))
        .max_coord_slots(64)
        .config(config);
    if rtt_us > 0 {
        b = b.latency(LatencyModel { rtt: Duration::from_micros(rtt_us), ns_per_kib: 0 });
    }
    let cluster = b.build().unwrap();
    cluster.bulk_load(KV, (0..2048u64).map(|k| (k, value(0)))).unwrap();
    cluster
}

/// A 4-update counter-increment request over `[base, base+4)`.
fn increment_req(base: u64) -> TxnRequest {
    let mut req = TxnRequest::new();
    for k in base..base + 4 {
        req = req.update(KV, k, |old| value(counter(old) + 1));
    }
    req
}

/// Disjoint-key batches (low contention): batch `i` of `n` covers
/// `[i*4, i*4+4)` within a 512-key working set.
fn batch(n: usize, round: u64) -> Vec<TxnRequest> {
    (0..n as u64)
        .map(|i| increment_req(((round * n as u64 + i) * 4) % 512))
        .collect()
}

fn warm(co: &mut Coordinator) {
    for base in (0..512u64).step_by(4) {
        let r = co.run_interleaved(&[increment_req(base)]);
        assert!(r.into_iter().all(|x| x.is_ok()), "warmup commit failed");
    }
}

// ---------------------------------------------------------------------
// Semantics
// ---------------------------------------------------------------------

/// Interleaved batches commit with classic semantics: every update
/// lands exactly once, reads return committed values, nothing is left
/// locked or logged.
#[test]
fn interleaved_batch_commits_every_update_exactly_once() {
    let config = SystemConfig::new(ProtocolKind::Pandora)
        .with_inflight_txns(8)
        .with_qp_stripes(4);
    let cluster = build(config, 0);
    let (mut co, _lease) = cluster.coordinator().unwrap();
    let rounds = 16u64;
    for round in 0..rounds {
        let reqs = batch(8, round);
        let (outcomes, _aborts) = co.run_interleaved_retrying(&reqs).expect("batch commits");
        assert_eq!(outcomes.len(), 8);
    }
    // 16 rounds x 8 txns x 4 increments, uniformly over keys 0..512.
    let expected_total = rounds * 8 * 4;
    let total: u64 = (0..512u64).map(|k| counter(&cluster.peek(KV, k).unwrap())).sum();
    assert_eq!(total, expected_total, "updates lost or duplicated");
    for k in 0..512u64 {
        for node in cluster.replica_nodes(KV, k) {
            let (lock, _, _) = cluster.raw_slot(KV, k, node).expect("slot present");
            assert!(!lock.is_locked(), "residual lock on key {k} node {node:?}");
        }
    }
}

/// Reads in a request observe committed state, and the outcome vector
/// lines up with the request's read ops in order.
#[test]
fn interleaved_reads_return_committed_values_in_op_order() {
    let config = SystemConfig::new(ProtocolKind::Pandora)
        .with_inflight_txns(4)
        .with_qp_stripes(2);
    let cluster = build(config, 0);
    let (mut co, _lease) = cluster.coordinator().unwrap();
    let setup: Vec<TxnRequest> = (0..4u64)
        .map(|i| TxnRequest::new().write(KV, 100 + i, value(1000 + i)))
        .collect();
    co.run_interleaved_retrying(&setup).expect("setup commits");
    let reads: Vec<TxnRequest> = (0..4u64)
        .map(|i| TxnRequest::new().read(KV, 100 + i).read(KV, 103 - i))
        .collect();
    let (outcomes, _aborts) = co.run_interleaved_retrying(&reads).expect("reads commit");
    for (i, out) in outcomes.iter().enumerate() {
        let i = i as u64;
        assert_eq!(out.reads.len(), 2);
        assert_eq!(counter(out.reads[0].as_ref().unwrap()), 1000 + i);
        assert_eq!(counter(out.reads[1].as_ref().unwrap()), 1000 + (3 - i));
    }
    // A read of an absent key is None, not an abort.
    let miss = co.run_interleaved(&[TxnRequest::new().read(KV, 3999)]);
    assert!(miss[0].as_ref().unwrap().reads[0].is_none());
}

/// Intra-batch write-write conflicts resolve like independent
/// coordinators: the retrying wrapper converges, and the contended
/// counter reflects every transaction exactly once.
#[test]
fn interleaved_conflicts_on_one_key_all_commit_exactly_once() {
    let config = SystemConfig::new(ProtocolKind::Pandora)
        .with_inflight_txns(8)
        .with_qp_stripes(4);
    let cluster = build(config, 0);
    let (mut co, _lease) = cluster.coordinator().unwrap();
    let reqs: Vec<TxnRequest> = (0..8)
        .map(|_| TxnRequest::new().update(KV, 7, |old| value(counter(old) + 1)))
        .collect();
    let (outcomes, _aborts) = co.run_interleaved_retrying(&reqs).expect("contended batch commits");
    assert_eq!(outcomes.len(), 8);
    assert_eq!(counter(&cluster.peek(KV, 7).unwrap()), 8, "lost update under contention");
}

/// Invisibility: with `inflight_txns = 1` and `qp_stripes = 1` the
/// interleaved entry points take the classic engine path and produce
/// identical state and identical verb counts to the closure API.
#[test]
fn single_slot_single_stripe_reproduces_classic_behavior() {
    let run_requests = |cluster: &SimCluster| {
        let (mut co, _lease) = cluster.coordinator().unwrap();
        for round in 0..8u64 {
            co.run_interleaved_retrying(&batch(4, round)).expect("commits");
        }
        let state: Vec<u64> = (0..512u64).map(|k| counter(&cluster.peek(KV, k).unwrap())).collect();
        (cluster.ctx.fabric.total_counters(), state)
    };
    let run_closures = |cluster: &SimCluster| {
        let (mut co, _lease) = cluster.coordinator().unwrap();
        for round in 0..8u64 {
            for i in 0..4u64 {
                let base = ((round * 4 + i) * 4) % 512;
                co.run(|txn| {
                    for k in base..base + 4 {
                        let old = counter(&txn.read(KV, k)?.expect("loaded"));
                        txn.write(KV, k, &value(old + 1))?;
                    }
                    Ok(())
                })
                .expect("commits");
            }
        }
        let state: Vec<u64> = (0..512u64).map(|k| counter(&cluster.peek(KV, k).unwrap())).collect();
        (cluster.ctx.fabric.total_counters(), state)
    };
    let baseline = SystemConfig::new(ProtocolKind::Pandora);
    let (_, classic_state) = run_closures(&build(baseline, 0));
    let (_, request_state) = run_requests(&build(baseline, 0));
    assert_eq!(classic_state, request_state, "request path diverges from the closure path");
    // The declared Update op reads under the lock instead of running a
    // separate transactional read first, so verb counts legitimately
    // differ from the closure shape; what must match exactly is the
    // request path with interleaving off vs on-but-width-1.
    let width1 = SystemConfig::new(ProtocolKind::Pandora)
        .with_inflight_txns(1)
        .with_qp_stripes(1);
    let (v1, s1) = run_requests(&build(width1, 0));
    let off = SystemConfig::new(ProtocolKind::Pandora);
    let (v0, s0) = run_requests(&build(off, 0));
    assert_eq!(s1, s0, "width-1 interleaving changes final state");
    assert_eq!(v1, v0, "width-1 interleaving changes wire traffic");
}

// ---------------------------------------------------------------------
// The throughput gate (release only)
// ---------------------------------------------------------------------

/// Committed transactions per second through the request path.
fn commit_rate(config: SystemConfig) -> f64 {
    let cluster = build(config, 2);
    let (mut co, _lease) = cluster.coordinator().unwrap();
    warm(&mut co);
    let rounds = 24u64;
    let per_batch = 16usize;
    let t0 = Instant::now();
    let mut committed = 0u64;
    for round in 0..rounds {
        let (outcomes, _aborts) =
            co.run_interleaved_retrying(&batch(per_batch, round)).expect("batch commits");
        committed += outcomes.len() as u64;
    }
    committed as f64 / t0.elapsed().as_secs_f64()
}

#[test]
#[cfg_attr(debug_assertions, ignore = "timing gate needs an optimized build")]
fn interleaved_commit_rate_at_least_2x_classic_at_2us_rtt() {
    let classic = commit_rate(SystemConfig::new(ProtocolKind::Pandora));
    let interleaved = commit_rate(
        SystemConfig::new(ProtocolKind::Pandora)
            .with_inflight_txns(8)
            .with_qp_stripes(4),
    );
    eprintln!("classic {classic:.0} txn/s, interleaved {interleaved:.0} txn/s");
    assert!(
        interleaved >= classic * 2.0,
        "interleaved scheduler hides too little phase latency: {interleaved:.0} txn/s vs classic \
         {classic:.0} txn/s (< 2x)"
    );
}

//! Deterministic false-suspicion survival (paper §3.3.2, Cor. 4): the
//! FD declares a *live* coordinator failed mid-transaction. The victim
//! observes `AccessRevoked` on its next verb, its stray write-lock is
//! left in place (nothing was logged, so recovery has nothing to roll
//! back and PILL defers stray release to stealing), and the survivor
//! re-registers under a fresh id and steals its own former lock exactly
//! once.

use dkvs::{TableDef, TableId};
use pandora::{ProtocolKind, SimCluster, TxnError};
use rdma_sim::RdmaError;

const TABLE: TableId = TableId(0);

fn value(x: u64) -> Vec<u8> {
    let mut v = vec![0u8; 16];
    v[0..8].copy_from_slice(&x.to_le_bytes());
    v
}

#[test]
fn live_coordinator_survives_false_suspicion() {
    let cluster = SimCluster::builder(ProtocolKind::Pandora)
        .memory_nodes(2)
        .replication(2)
        .table(TableDef::sized_for(0, "t", 16, 64))
        // Flight recorder rides along: an assertion failure names a
        // span-level dump of the suspicion/steal timeline.
        .flight(1024)
        .build()
        .unwrap();
    cluster.bulk_load(TABLE, [(0u64, value(10)), (1u64, value(20))]).unwrap();
    let flight = cluster.flight.clone().expect("flight recorder installed");
    pandora::dump_on_panic(
        Some(&flight),
        "false-suspicion",
        std::panic::AssertUnwindSafe(|| survive_false_suspicion(&cluster)),
    );
}

fn survive_false_suspicion(cluster: &SimCluster) {
    let (mut co, lease) = cluster.coordinator().unwrap();
    let old_id = lease.coord_id;

    // Mid-transaction: the eager write-lock on key 0 is held when the FD
    // falsely declares us. Recovery finds no undo log (logging happens at
    // commit), so the lock survives as a stray owned by the old id.
    {
        let mut txn = co.begin();
        txn.write(TABLE, 0, &value(11)).unwrap();
        let report = cluster.fd.declare_failed(old_id).expect("declared");
        assert!(report.completed, "recovery of the falsely suspected id must complete");
        // The victim observes the revocation on its next verb.
        match txn.write(TABLE, 1, &value(21)) {
            Err(TxnError::Rdma(RdmaError::AccessRevoked)) => {}
            other => panic!("expected AccessRevoked mid-transaction, got {other:?}"),
        }
    } // txn drop: revoked links mean cleanup is recovery's job — lock stays.

    let primary = cluster.primary_node(TABLE, 0);
    let (lock, _, _) = cluster.raw_slot(TABLE, 0, primary).expect("slot");
    assert!(lock.is_locked(), "stray lock should survive recovery (PILL defers to stealing)");
    assert_eq!(lock.owner(), old_id, "stray is owned by the suspected incarnation");

    // Survive: re-register under a fresh id and resume on the same
    // coordinator (address cache, stats and all).
    let new_lease = co.reincarnate(&cluster.fd).expect("reincarnate");
    assert_ne!(new_lease.coord_id, old_id, "fresh incarnation gets a fresh id");
    assert_eq!(cluster.ctx.resilience.snapshot().false_suspicion_survivals, 1);

    // First post-survival write to key 0 steals the former self's stray —
    // exactly once; the second write finds a clean lock.
    co.run(|txn| txn.write(TABLE, 0, &value(12))).unwrap();
    assert_eq!(co.stats.locks_stolen, 1, "stray stolen exactly once");
    co.run(|txn| txn.write(TABLE, 0, &value(13))).unwrap();
    assert_eq!(co.stats.locks_stolen, 1, "no second steal on a released lock");

    // State is whole: the aborted transaction left no trace, the
    // post-survival writes landed, and id recycling converges.
    assert_eq!(cluster.peek(TABLE, 0), Some(value(13)));
    assert_eq!(cluster.peek(TABLE, 1), Some(value(20)));
    let (lock, _, _) = cluster.raw_slot(TABLE, 0, primary).expect("slot");
    assert!(!lock.is_locked(), "no residual lock after commit");
    let (released, recycled) = cluster.fd.recovery().recycle_failed_ids();
    assert_eq!(released, 0, "the steal already freed the stray; nothing left to release");
    assert!(recycled >= 1, "old id is recyclable once its strays are gone");
    assert_eq!(cluster.ctx.failed.population(), 0);
}

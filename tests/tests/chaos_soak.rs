//! Seeded chaos soak: transfer workers under randomized transient-fault
//! schedules (verb timeouts, link flaps, partitions, delay spikes) plus
//! a fault storm of power-cuts and false suspicions. After quiescing,
//! the audit asserts the three survivable-chaos invariants: money
//! conserved, every recovery completed, zero residual locks. Every
//! assertion message carries the seed; to replay a failure, call
//! `soak(<seed>)` from a scratch test — the chaos schedule and the
//! fault storm both derive deterministically from it.

use std::sync::Arc;
use std::time::Duration;

use dkvs::{TableDef, TableId};
use pandora::{Coordinator, ProtocolKind, SimCluster, TxnError};
use pandora_workloads::{RunnerConfig, Workload, WorkloadRunner};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rdma_sim::ChaosConfig;

const ACCOUNTS: TableId = TableId(0);
const N_ACCOUNTS: u64 = 64;
const INITIAL: i64 = 1_000;

fn value(b: i64) -> Vec<u8> {
    let mut v = vec![0u8; 16];
    v[0..8].copy_from_slice(&b.to_le_bytes());
    v
}

fn balance(v: &[u8]) -> i64 {
    i64::from_le_bytes(v[0..8].try_into().unwrap())
}

/// Transfer-only bank: unlike SmallBank (whose deposits mint money) the
/// account total is invariant, so conservation is the correctness
/// oracle — any lost update, partial commit, replayed roll-back, or
/// double-applied retry shows up as a minted or burned coin.
struct TransferBank;

impl Workload for TransferBank {
    fn name(&self) -> &'static str {
        "transfer-bank"
    }

    fn tables(&self) -> Vec<TableDef> {
        vec![TableDef::sized_for(0, "checking", 16, N_ACCOUNTS)]
    }

    fn load(&self, cluster: &SimCluster) {
        cluster
            .bulk_load(ACCOUNTS, (0..N_ACCOUNTS).map(|k| (k, value(INITIAL))))
            .unwrap();
    }

    fn execute(&self, co: &mut Coordinator, rng: &mut StdRng) -> Result<(), TxnError> {
        let from = rng.random_range(0..N_ACCOUNTS);
        let to = (from + 1 + rng.random_range(0..N_ACCOUNTS - 1)) % N_ACCOUNTS;
        let mut txn = co.begin();
        let a = balance(&txn.read(ACCOUNTS, from)?.expect("from account loaded"));
        let b = balance(&txn.read(ACCOUNTS, to)?.expect("to account loaded"));
        let amount = 7.min(a).max(0);
        txn.write(ACCOUNTS, from, &value(a - amount))?;
        txn.write(ACCOUNTS, to, &value(b + amount))?;
        txn.commit()
    }
}

fn soak_cluster(chaos: Option<ChaosConfig>, flight: bool) -> Arc<SimCluster> {
    let mut b = SimCluster::builder(ProtocolKind::Pandora)
        .memory_nodes(3)
        .replication(2)
        // Generous id space: every false-suspicion survival registers a
        // fresh incarnation, and the storm produces many. Capacity must
        // cover the 512 × 32 KiB log slabs on top of the table.
        .capacity_per_node(64 << 20)
        .table(TableDef::sized_for(0, "checking", 16, N_ACCOUNTS))
        .max_coord_slots(512);
    if let Some(cfg) = chaos {
        b = b.chaos(cfg);
    }
    if flight {
        b = b.flight(8192);
    }
    let cluster = Arc::new(b.build().unwrap());
    TransferBank.load(&cluster);
    cluster
}

/// One soak run: load, enable chaos, run a fault storm over a worker
/// fleet, quiesce, audit. An assertion failure dumps the flight
/// recorder and re-panics with the dump path appended, so the report
/// names both the seed to replay and the span-level post-mortem file.
fn soak(seed: u64) {
    let cluster = soak_cluster(Some(ChaosConfig::heavy(seed)), true);
    let flight = cluster.flight.clone().expect("flight recorder installed");
    flight.set_chaos_seed(seed);
    pandora::dump_on_panic(
        Some(&flight),
        "chaos-soak",
        std::panic::AssertUnwindSafe(|| storm_and_audit(&cluster, seed)),
    );
}

fn storm_and_audit(cluster: &Arc<SimCluster>, seed: u64) {
    let chaos = cluster.chaos.clone().expect("chaos installed");
    chaos.set_enabled(true);

    // The monitor declares self-fenced and power-cut workers (their
    // heartbeats stop) and inevitably some retry-stalled live ones — the
    // latter are the organic false suspicions this layer must survive.
    let monitor = cluster.fd.start_monitor();
    let mut runner = WorkloadRunner::spawn(
        Arc::clone(cluster),
        Arc::new(TransferBank),
        RunnerConfig { coordinators: 4, seed, phase_metrics: false },
    );

    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
    for _round in 0..6 {
        std::thread::sleep(Duration::from_millis(15));
        match rng.random_range(0..3u32) {
            0 => {
                // Power-cut a worker; the monitor declares and recovers
                // it once its heartbeat goes stale.
                let idx = rng.random_range(0..runner.len());
                runner.crash_worker(idx);
                std::thread::sleep(Duration::from_millis(2));
                runner.respawn_crashed();
            }
            1 => {
                // Deliberate false suspicion: declare a live worker
                // failed. It observes AccessRevoked, waits out its own
                // recovery, and re-registers under a fresh id.
                let ids = runner.coord_ids();
                let victim = ids[rng.random_range(0..ids.len())];
                cluster.fd.declare_failed(victim);
            }
            _ => {
                // Partition a random link for a bounded verb count.
                chaos.partition(
                    rng.random_range(0..12u32),
                    rng.random_range(0..3u16),
                    rng.random_range(5..40u64),
                );
            }
        }
    }

    // Quiesce: stop injecting, give in-flight retries and reincarnations
    // time to settle, then stop the fleet. The monitor then declares the
    // (no longer beating) stopped workers and runs their — now
    // fault-free — recoveries, releasing any locks a worker left behind
    // when it fenced itself at the instant the storm ended.
    chaos.set_enabled(false);
    std::thread::sleep(Duration::from_millis(40));
    runner.respawn_crashed();
    std::thread::sleep(Duration::from_millis(20));
    runner.stop_and_join();
    std::thread::sleep(cluster.ctx.config.fd_timeout + Duration::from_millis(20));
    monitor.stop();

    // Every recovery that ran — storm-driven or cleanup — completed.
    for report in cluster.fd.reports() {
        assert!(report.completed, "seed {seed}: recovery of coord {} incomplete", report.coord);
    }

    // Failed-id recycling converges now that the fabric is calm.
    cluster.fd.recovery().recycle_failed_ids();
    assert_eq!(cluster.ctx.failed.population(), 0, "seed {seed}: failed ids not recycled");

    // Conservation: no coin minted or burned by any retry/recovery path.
    let total: i64 = (0..N_ACCOUNTS)
        .map(|k| {
            balance(
                &cluster
                    .peek(ACCOUNTS, k)
                    .unwrap_or_else(|| panic!("seed {seed}: account {k} unreadable")),
            )
        })
        .sum();
    assert_eq!(total, N_ACCOUNTS as i64 * INITIAL, "seed {seed}: money not conserved");

    // Zero residual locks on any replica of any account.
    for k in 0..N_ACCOUNTS {
        for node in cluster.replica_nodes(ACCOUNTS, k) {
            let (lock, _, _) = cluster
                .raw_slot(ACCOUNTS, k, node)
                .unwrap_or_else(|| panic!("seed {seed}: account {k} missing on {node:?}"));
            assert!(
                !lock.is_locked(),
                "seed {seed}: residual lock on account {k} node {node:?} (owner {})",
                lock.owner()
            );
        }
    }

    // The storm actually exercised the machinery under test.
    let injected = chaos.stats();
    assert!(
        injected.timeouts_ambiguous + injected.timeouts_not_applied > 0,
        "seed {seed}: chaos injected no verb timeouts"
    );
    let resilience = cluster.ctx.resilience.snapshot();
    assert!(resilience.retries > 0, "seed {seed}: retry machinery never engaged");
}

/// The three CI-pinned seeds (kept in sync with
/// `.github/workflows/ci.yml`'s chaos-soak job).
#[test]
fn chaos_soak_seed_1() {
    soak(0xD15EA5E01);
}

#[test]
fn chaos_soak_seed_2() {
    soak(0xD15EA5E02);
}

#[test]
fn chaos_soak_seed_3() {
    soak(0xD15EA5E03);
}

/// Broader local sweep (ISSUE acceptance: ≥10 seeds). Ignored in the
/// default run to keep `cargo test` fast; CI runs it in the dedicated
/// chaos-soak job.
#[test]
#[ignore = "long soak; run explicitly or via the CI chaos-soak job"]
fn chaos_soak_ten_seeds() {
    for seed in 100..110u64 {
        soak(seed);
    }
}

/// Zero-cost-off: a cluster with a chaos model installed but never
/// enabled is byte-identical to one with no chaos at all — same verb
/// counts on the wire, same final state.
#[test]
fn disabled_chaos_is_invisible() {
    let run = |cluster: Arc<SimCluster>| {
        let (mut co, lease) = cluster.coordinator().unwrap();
        for i in 0..200u64 {
            let from = (i * 7) % N_ACCOUNTS;
            let to = (from + 1 + (i * 13) % (N_ACCOUNTS - 1)) % N_ACCOUNTS;
            co.run(|txn| {
                let a = balance(&txn.read(ACCOUNTS, from)?.expect("from"));
                let b = balance(&txn.read(ACCOUNTS, to)?.expect("to"));
                let amount = 5.min(a).max(0);
                txn.write(ACCOUNTS, from, &value(a - amount))?;
                txn.write(ACCOUNTS, to, &value(b + amount))
            })
            .unwrap();
        }
        cluster.fd.deregister(lease.coord_id);
        co.gate().mark_dead();
        let finals: Vec<i64> =
            (0..N_ACCOUNTS).map(|k| balance(&cluster.peek(ACCOUNTS, k).unwrap())).collect();
        (cluster.ctx.fabric.total_counters(), finals)
    };

    let plain = run(soak_cluster(None, false));
    let armed = run(soak_cluster(Some(ChaosConfig::heavy(7)), false));
    assert_eq!(plain.0, armed.0, "verb counts diverge with chaos installed but disabled");
    assert_eq!(plain.1, armed.1, "final state diverges with chaos installed but disabled");
}
